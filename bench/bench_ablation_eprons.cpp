// Ablation: which EPRONS-Server mechanism buys what?
//
// DESIGN.md calls out three design choices in the server policy:
//   1. average-VP frequency selection (vs Rubik's max-VP rule),
//   2. EDF ordering of waiting requests,
//   3. borrowing measured network slack.
// This bench disables one at a time and reports CPU power + SLA compliance
// at a mid/high utilization operating point, plus the ECN-conservatism
// effect on TimeTrader when the network is consolidated (the section I
// argument for why "TimeTrader + consolidation" is not a substitute for
// EPRONS).
#include "bench_common.h"
#include "sim/search_cluster.h"
#include "topo/aggregation.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const double duration_s = cli.get_double("duration", 8.0);
  bench::print_header(
      "Ablation — EPRONS-Server mechanisms + TimeTrader-under-consolidation",
      "average-VP and slack each trim power at equal SLA compliance; EDF "
      "shapes which requests miss; consolidated networks make TimeTrader "
      "conservative (section I)");

  const Scenario scn = bench::make_scenario(cli);
  const AggregationPolicies policies(scn.fat_tree());
  const auto full = policies.policy(0).switch_on;
  const auto agg2 = policies.policy(2).switch_on;
  Rng bg_rng(900);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 6, 0.20, 0.1, bg_rng);

  auto run = [&](const std::string& policy, double util,
                 const std::vector<bool>* subnet) {
    ScenarioConfig scenario;
    scenario.cluster.policy = policy;
    scenario.cluster.target_utilization = util;
    scenario.cluster.duration = sec(duration_s);
    scenario.cluster.warmup = sec(1.0);
    return scn.run(background, scenario, subnet);
  };

  std::printf("(1) EPRONS-Server feature knockout (full topology)\n");
  Table t({"variant", "cpu_W@30%", "miss%@30%", "cpu_W@50%", "miss%@50%"});
  t.set_precision(2);
  for (const char* variant :
       {"eprons", "eprons-maxvp", "eprons-noedf", "eprons-noslack",
        "rubik+", "rubik"}) {
    const auto lo = run(variant, 0.3, &full);
    const auto hi = run(variant, 0.5, &full);
    t.add_row({std::string(variant), lo.metrics.avg_cpu_power_per_server,
               100.0 * lo.metrics.subquery_miss_rate,
               hi.metrics.avg_cpu_power_per_server,
               100.0 * hi.metrics.subquery_miss_rate});
  }
  t.print(std::cout, fmt);

  std::printf("\n(2) TimeTrader on a consolidated network (aggregation 2): "
              "the ECN signal turns it conservative\n");
  Table t2({"policy", "network", "cpu_W", "p95_ms", "miss_%"});
  t2.set_precision(2);
  for (const auto& [policy, subnet, label] :
       {std::tuple{"timetrader", &full, "full"},
        std::tuple{"timetrader", &agg2, "aggregation2"},
        std::tuple{"eprons", &full, "full"},
        std::tuple{"eprons", &agg2, "aggregation2"}}) {
    const auto result = run(policy, 0.3, subnet);
    t2.add_row({std::string(policy), std::string(label),
                result.metrics.avg_cpu_power_per_server,
                to_ms(result.metrics.subquery_latency.p95),
                100.0 * result.metrics.subquery_miss_rate});
  }
  t2.print(std::cout, fmt);
  return 0;
}
