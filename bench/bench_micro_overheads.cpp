// Section III-C overhead claims, as google-benchmark microbenchmarks:
//   * "computing one convolution requires 20 us" (FFT path),
//   * "it takes less than 30 us" to determine the operating frequency once
//     equivalent distributions are cached (binary search on average VP),
//   * arrival-instant decisions pay n convolutions.
#include <benchmark/benchmark.h>

#include "dvfs/equivalent_queue.h"
#include "dvfs/policies.h"
#include "dvfs/synthetic_workload.h"
#include "stats/fft.h"

namespace eprons {
namespace {

const ServiceModel& shared_model() {
  static const ServiceModel model = [] {
    Rng rng(1);
    SyntheticWorkloadConfig config;
    config.samples = 50000;
    config.bins = 512;  // the paper-scale PDF resolution
    return make_search_service_model(config, rng);
  }();
  return model;
}

void BM_FftConvolution(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> a(n), b(n);
  for (double& x : a) x = rng.uniform();
  for (double& x : b) x = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(convolve(a, b));
  }
}
BENCHMARK(BM_FftConvolution)->Arg(256)->Arg(512)->Arg(1024);

void BM_EquivalentQueueDeparture(benchmark::State& state) {
  // Departure instants hit the fresh-convolution cache: near-zero cost.
  const ServiceModel& model = shared_model();
  const auto depth = static_cast<std::size_t>(state.range(0));
  model.fresh_convolution(depth);  // warm the cache
  for (auto _ : state) {
    EquivalentQueue q(&model, depth, 0.0);
    benchmark::DoNotOptimize(q.at(depth - 1).size());
  }
}
BENCHMARK(BM_EquivalentQueueDeparture)->Arg(1)->Arg(4)->Arg(8);

void BM_EquivalentQueueArrival(benchmark::State& state) {
  // Arrival instants pay n convolutions (paper section III-C).
  const ServiceModel& model = shared_model();
  const auto depth = static_cast<std::size_t>(state.range(0));
  const Work done = model.work().mean() / 2.0;
  for (auto _ : state) {
    EquivalentQueue q(&model, depth, done);
    benchmark::DoNotOptimize(q.at(depth - 1).size());
  }
}
BENCHMARK(BM_EquivalentQueueArrival)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FrequencyDecision(benchmark::State& state) {
  // The <30 us claim: selecting the frequency by binary search on the
  // average VP, with equivalent distributions already available.
  const ServiceModel& model = shared_model();
  EpronsServerPolicy policy(&model);
  const auto depth = static_cast<std::size_t>(state.range(0));
  model.fresh_convolution(depth);
  std::vector<QueuedRequest> queue(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    queue[i].id = static_cast<RequestId>(i);
    queue[i].deadline_server = ms(25.0) + ms(2.0) * static_cast<double>(i);
    queue[i].deadline_with_slack = queue[i].deadline_server + ms(2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.select_frequency(
        0.0, std::span<const QueuedRequest>(queue.data(), queue.size()),
        0.0));
  }
}
BENCHMARK(BM_FrequencyDecision)->Arg(1)->Arg(4)->Arg(8);

void BM_RubikDecision(benchmark::State& state) {
  const ServiceModel& model = shared_model();
  RubikPolicy policy(&model);
  const auto depth = static_cast<std::size_t>(state.range(0));
  model.fresh_convolution(depth);
  std::vector<QueuedRequest> queue(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    queue[i].deadline_server = ms(25.0) + ms(2.0) * static_cast<double>(i);
    queue[i].deadline_with_slack = queue[i].deadline_server;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.select_frequency(
        0.0, std::span<const QueuedRequest>(queue.data(), queue.size()),
        0.0));
  }
}
BENCHMARK(BM_RubikDecision)->Arg(4);

}  // namespace
}  // namespace eprons

BENCHMARK_MAIN();
