// Ablation: fault injection vs SLA-aware emergency recovery.
//
// EPRONS consolidates onto a minimal subnet — the configuration most
// fragile to an unplanned switch or link failure. This bench injects a
// deterministic, seed-driven fault schedule (switch crashes, link outages,
// flaky links) into the epoch-controller loop and sweeps
// MTBF x linger_epochs x K floor, reporting the paper-style tradeoff:
// lingering backup switches cost idle energy every epoch, but during an
// outage they are a hot standby pool — recovery completes in one 2 s poll
// instead of one poll + a 72.52 s cold boot, cutting the modeled SLA
// violations during the outage window by the same factor.
//
// Flags: --mtbf=SECONDS (600), --mttr=SECONDS (120), --fault-seed=N (7),
// --epochs=N (24), plus the shared --threads/--csv/--json/telemetry flags.
// Output is bit-identical for any --threads value.
#include "bench_common.h"
#include "core/epoch_controller.h"
#include "fault/fault_injector.h"
#include "trace/diurnal.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Ablation — fault injection and SLA-aware emergency recovery",
      "backup paths (section IV-B, citing ElasticTree) hide the 72.52 s "
      "boot window from failure recovery, at lingering-switch energy cost");

  const double mtbf_s = cli.get_double("mtbf", 600.0);
  const double mttr_s = cli.get_double("mttr", 120.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 7));
  const int epochs = static_cast<int>(cli.get_int("epochs", 24));

  const Scenario scn = bench::make_scenario(cli);
  const Graph& graph = scn.topology().graph();
  const DiurnalTraceConfig trace_config;
  const auto trace = make_diurnal_trace(trace_config);
  const int epoch_minutes = 10;
  const SimTime epoch_length = sec(60.0 * epoch_minutes);

  Table t({"mtbf_s", "linger", "k_min", "outages", "replans", "hot", "boots",
           "est_violations", "boot_Wh", "linger_Wh", "mean_switches"});
  t.set_precision(2);

  for (double mtbf : {mtbf_s, 4.0 * mtbf_s}) {
    for (int linger : {0, 1, 3}) {
      for (double k_min : {1.0, 2.0}) {
        EpochControllerConfig config;
        config.transition.linger_epochs = linger;
        config.transition.epoch_length = epoch_length;
        config.joint.k_min = k_min;
        config.joint.slack.samples_per_pair = 120;
        config.samples_per_epoch = 60;
        EpochController controller = scn.epoch_controller(config);

        FaultInjectorConfig faults;
        faults.mtbf = sec(mtbf);
        faults.mttr = sec(mttr_s);
        faults.horizon = epochs * epoch_length;
        faults.seed = fault_seed;
        const FaultSchedule schedule = generate_fault_schedule(graph, faults);
        FaultCursor cursor(&graph, &schedule.timeline);

        Rng rng(77);
        long long switch_epochs = 0;
        long long replans = 0, hot = 0, boots = 0;
        double est_violations = 0.0;
        for (int e = 0; e < epochs; ++e) {
          const TracePoint& point =
              trace[static_cast<std::size_t>(e * epoch_minutes) %
                    trace.size()];
          const FlowGenConfig gen = scn.flow_gen();
          Rng flow_rng(2000 + e);
          const FlowSet background = make_background_flows(
              gen, 6, point.background_util, 0.1, flow_rng);
          const double util = std::max(0.02, 0.5 * point.search_load);
          const EpochReport report =
              controller.run_epoch(background, util, rng);
          switch_epochs += report.actual_switches;

          // Failures noticed by the 2 s poll, not the 10-min epoch: every
          // transition batch inside this epoch triggers a notification.
          const SimTime epoch_end = (e + 1) * epoch_length;
          while (!cursor.exhausted() && cursor.next_time() <= epoch_end) {
            cursor.advance_to(cursor.next_time());
            const RecoveryReport recovery =
                controller.on_failure(cursor.overlay());
            if (recovery.replanned) {
              ++replans;
              if (recovery.hot_recovery) ++hot;
            }
            boots += recovery.emergency_boots;
            est_violations += recovery.estimated_outage_violations;
          }
        }

        const double to_wh = 1.0 / 3.6e9;  // Energy is W*us
        t.add_row({mtbf, static_cast<long long>(linger), k_min,
                   static_cast<long long>(schedule.events.size()), replans,
                   hot, boots, est_violations,
                   controller.transitions().boot_energy() * to_wh,
                   controller.transitions().lingering_energy() * to_wh,
                   static_cast<double>(switch_epochs) / epochs});
      }
    }
  }
  t.print(std::cout, fmt);
  std::printf(
      "\nhot = replans served entirely by already-on switches (lingering "
      "backups): the outage window is one 2 s poll. Cold recoveries add a "
      "72.52 s boot on top, multiplying the queries lost during the outage "
      "(est_violations). linger buys hot recoveries at linger_Wh of idle "
      "standby energy.\n");
  return 0;
}
