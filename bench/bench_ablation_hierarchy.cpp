// Ablation: hierarchical pod-decomposed consolidation vs the flat solver.
//
// Three questions, one table each:
//   A. power gap — how much optimality does the pod decomposition give up
//      on fabrics the flat greedy can still handle (k=4, k=8)? Reported
//      as the mean/max hier-vs-flat network-power ratio over seeded
//      random instances (ratios below 1.0 mean the decomposition won).
//   B. wall-clock at scale — cold consolidation time on a k=16 fat-tree
//      (1024 hosts) for the flat greedy and the hierarchical solver at
//      1/4/8 pod-solve threads, with the placement fingerprint per row:
//      every hierarchical row must print the same fingerprint (the
//      determinism contract), and CI diffs it across runs.
//   C. end-to-end — one full joint-optimizer cold K sweep at k=4 vs k=16
//      (hierarchical), same sampling knobs; the k=16 sweep must land
//      within ~2x of the k=4 one (the BENCH_8.json acceptance metric).
//
//   ./bench_ablation_hierarchy [--trials=N] [--reps=N] [--csv|--json]
#include <chrono>
#include <cstdint>
#include <functional>

#include "bench_common.h"
#include "consolidate/hierarchical_consolidator.h"
#include "core/joint_optimizer.h"

using namespace eprons;

namespace {

double time_best_ms(int reps, const std::function<void()>& fn) {
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best_ms = std::min(
        best_ms,
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best_ms;
}

FlowSet random_flows(const FatTree& ft, Rng& rng, int count) {
  FlowSet flows;
  for (int i = 0; i < count; ++i) {
    const int src = static_cast<int>(rng.uniform_int(0, ft.num_hosts() - 1));
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.uniform_int(0, ft.num_hosts() - 1));
    }
    flows.add(src, dst, rng.uniform(20.0, 220.0),
              rng.bernoulli(0.5) ? FlowClass::LatencySensitive
                                 : FlowClass::LatencyTolerant);
  }
  return flows;
}

ConsolidationConfig consolidation_config() {
  ConsolidationConfig config;
  config.scale_factor_k = 2.0;
  config.safety_margin = 50.0;
  config.switch_power = 36.0;
  return config;
}

void power_gap(int k_ary, int trials, int flows_per_trial, TableFormat fmt) {
  const FatTree ft(k_ary);
  const GreedyConsolidator flat(&ft);
  const HierarchicalConsolidator hier;
  const ConsolidationConfig config = consolidation_config();
  Rng rng(static_cast<std::uint64_t>(500 + k_ary));
  int compared = 0;
  double flat_sum = 0.0, hier_sum = 0.0, ratio_sum = 0.0, ratio_max = 0.0;
  for (int t = 0; t < trials; ++t) {
    const FlowSet flows = random_flows(ft, rng, flows_per_trial);
    const ConsolidationResult a = flat.consolidate(ft, flows, config);
    const ConsolidationResult b = hier.consolidate(ft, flows, config);
    if (!a.feasible || !b.feasible || a.network_power <= 0.0) continue;
    ++compared;
    flat_sum += a.network_power;
    hier_sum += b.network_power;
    const double ratio = b.network_power / a.network_power;
    ratio_sum += ratio;
    ratio_max = std::max(ratio_max, ratio);
  }
  Table t({"k_ary", "trials", "compared", "mean_flat_W", "mean_hier_W",
           "mean_ratio", "max_ratio"});
  t.set_precision(3);
  t.add_row({static_cast<long long>(k_ary), static_cast<long long>(trials),
             static_cast<long long>(compared),
             compared ? flat_sum / compared : 0.0,
             compared ? hier_sum / compared : 0.0,
             compared ? ratio_sum / compared : 0.0, ratio_max});
  t.print(std::cout, fmt);
  std::printf("\n");
}

void scale_wallclock(int reps, TableFormat fmt) {
  const FatTree ft(16);
  std::printf("k=16 fat-tree: %d hosts, %d switches, cold consolidation of "
              "256 flows\n",
              ft.num_hosts(), ft.num_switches());
  Rng rng(616);
  const FlowSet flows = random_flows(ft, rng, 256);
  const ConsolidationConfig config = consolidation_config();

  Table t({"solver", "cold_ms", "active_switches", "fingerprint"});
  t.set_precision(2);
  const GreedyConsolidator flat(&ft);
  ConsolidationResult result;
  double ms = time_best_ms(
      reps, [&] { result = flat.consolidate(ft, flows, config); });
  t.add_row({std::string("flat greedy"), ms,
             static_cast<long long>(result.active_switches),
             strformat("%016llx", static_cast<unsigned long long>(
                                   placement_fingerprint(result)))});
  for (const int threads : {1, 4, 8}) {
    const HierarchicalConsolidator hier(nullptr, {threads});
    ms = time_best_ms(reps,
                      [&] { result = hier.consolidate(ft, flows, config); });
    t.add_row({strformat("hierarchical t=%d", threads), ms,
               static_cast<long long>(result.active_switches),
               strformat("%016llx", static_cast<unsigned long long>(
                                     placement_fingerprint(result)))});
  }
  t.print(std::cout, fmt);
  std::printf("\n");
}

/// Candidate fat-tree paths the packer scores for one flow set: 1 for a
/// same-edge pair, k/2 same-pod, (k/2)^2 inter-pod. The end-to-end rows
/// normalize wall-clock by flows x candidate paths — the unit of packing
/// work — because a k=16 sweep carries 62x the flows and 16x the paths
/// per flow of a k=4 sweep; raw wall-clock comparisons across scales only
/// measure that the instance grew.
std::size_t candidate_paths(const FatTree& ft, const FlowSet& flows) {
  const int half = ft.num_pods() / 2;
  std::size_t total = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& f = flows[i];
    if (ft.pod_of_host(f.src_host) != ft.pod_of_host(f.dst_host)) {
      total += static_cast<std::size_t>(half) * half;
    } else if (f.src_host / half == f.dst_host / half) {
      total += 1;
    } else {
      total += static_cast<std::size_t>(half);
    }
  }
  return total;
}

void end_to_end(int reps, TableFormat fmt) {
  SyntheticWorkloadConfig wl;
  wl.samples = 30000;
  wl.bins = 256;
  Rng mrng(41);
  const ServiceModel model = make_search_service_model(wl, mrng);
  const ServerPowerModel power;

  Table t({"scale", "optimize_ms", "feasible", "chosen_K", "total_W", "flows",
           "us_per_flowpath"});
  t.set_precision(2);
  double k4_unit_us = 0.0, k16_unit_us = 0.0;
  double k4_ms = 0.0, k16_ms = 0.0;
  for (const int k_ary : {4, 16}) {
    const FatTree topo(k_ary);
    FlowGenConfig gen;
    gen.num_hosts = topo.num_hosts();
    gen.hosts_per_edge = topo.hosts_per_access_switch();
    gen.exclude_host = 0;
    Rng rng(13);
    const FlowSet background =
        make_background_flows(gen, topo.num_hosts() / 16 * 3, 0.2, 0.1, rng);

    JointOptimizerConfig config;
    config.slack.samples_per_pair = 60;
    if (k_ary == 16) {
      // Per-leaf query demand shrinks with the 1023-leaf fan-out and the
      // SLA budget grows with the fan-out tail (see the k=16 scale smoke
      // in tests/integration_test.cpp for the derivation).
      config.query_request_demand = 0.2;
      config.query_reply_demand = 0.4;
      config.latency_constraint = ms(120.0);
    }
    const HierarchicalConsolidator hier(nullptr, {4});
    const JointOptimizer optimizer(&topo, &model, &power, config,
                                   k_ary == 16 ? &hier : nullptr);
    PlanRequest request;
    request.background = &background;
    request.utilization = 0.2;
    JointPlan plan;
    const double best =
        time_best_ms(reps, [&] { plan = optimizer.optimize(request); });
    const std::size_t paths = candidate_paths(topo, plan.flows);
    const double unit_us =
        paths > 0 ? best * 1000.0 / static_cast<double>(paths) : 0.0;
    (k_ary == 4 ? k4_ms : k16_ms) = best;
    (k_ary == 4 ? k4_unit_us : k16_unit_us) = unit_us;
    t.add_row({strformat("k=%d%s", k_ary, k_ary == 16 ? " hier" : " flat"),
               best, std::string(plan.feasible ? "yes" : "no"), plan.k,
               plan.total_power,
               static_cast<long long>(plan.flows.size()), unit_us});
  }
  t.print(std::cout, fmt);
  std::printf("k16_vs_k4_cold_sweep_ratio: %.2f\n",
              k4_ms > 0.0 ? k16_ms / k4_ms : 0.0);
  std::printf("k16_vs_k4_per_flowpath_ratio: %.3f\n\n",
              k4_unit_us > 0.0 ? k16_unit_us / k4_unit_us : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const int trials = static_cast<int>(cli.get_int("trials", 40));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  bench::print_header(
      "Ablation — hierarchical pod decomposition vs flat consolidation",
      "per-pod solves + one core-level instance (GreenDCN-style "
      "decomposition); the gap it pays and the scale it buys");

  power_gap(4, trials, 6, fmt);
  power_gap(8, trials, 24, fmt);
  scale_wallclock(reps, fmt);
  end_to_end(reps, fmt);
  return 0;
}
