// Shared fixtures for the figure-reproduction benches.
//
// Every bench binary prints the series of one paper figure as an aligned
// table (or CSV/JSON with --csv/--json) plus a short header stating what
// the paper reported, so `for b in build/bench/*; do $b; done` produces a
// complete paper-vs-measured record.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/scenario.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace eprons::bench {

/// The benches' common substrate: 4-ary fat-tree, synthetic search
/// workload (50K samples, 256 bins — enough resolution for figure
/// reproduction at a fraction of the paper's 100K build cost), default
/// Xeon power calibration. Honors --threads[=N] so any figure bench can
/// run its planner in parallel without changing results, plus the
/// telemetry flags (--metrics-out=FILE, --trace-out=FILE,
/// --epoch-log=FILE, --log-level=LEVEL) — ScenarioBuilder::build()
/// forwards them to obs::configure_telemetry, so every bench exports
/// planner metrics / Chrome traces with no per-bench wiring.
inline Scenario make_scenario(const Cli& cli, std::uint64_t seed = 1) {
  SyntheticWorkloadConfig workload;
  workload.samples = 50000;
  workload.bins = 256;
  return ScenarioBuilder()
      .seed(seed)
      .fat_tree(4)
      .workload(workload)
      .runtime(runtime_from_cli(cli))
      .build();
}

inline void print_header(const std::string& figure,
                         const std::string& paper_result) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf("paper: %s\n\n", paper_result.c_str());
}

/// Applies the shared --reference-* flag set (util/cli.h) to one planning
/// request. Every knob combination returns a byte-identical plan, so the
/// flags only trade speed for an independent implementation — useful for
/// bisecting a determinism regression in the field.
inline void apply_reference_flags(const ReferenceFlags& flags,
                                  PlanRequest* request) {
  request->use_reference_slack = flags.slack;
  request->use_reference_dvfs = flags.dvfs;
  request->use_reference_enumeration = flags.enumeration;
}

}  // namespace eprons::bench
