// Shared fixtures for the figure-reproduction benches.
//
// Every bench binary prints the series of one paper figure as an aligned
// table (or CSV with --csv) plus a short header stating what the paper
// reported, so `for b in build/bench/*; do $b; done` produces a complete
// paper-vs-measured record.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "dvfs/synthetic_workload.h"
#include "flow/flow.h"
#include "power/server_power.h"
#include "topo/fattree.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace eprons::bench {

struct Fixture {
  FatTree topo{4};
  ServerPowerModel power_model{};
  ServiceModel service_model;

  explicit Fixture(std::uint64_t seed = 1)
      : service_model(make_model(seed)) {}

 private:
  static ServiceModel make_model(std::uint64_t seed) {
    Rng rng(seed);
    SyntheticWorkloadConfig config;
    config.samples = 50000;
    config.bins = 256;
    return make_search_service_model(config, rng);
  }
};

/// Background-flow generator config shared by the figure benches: the
/// aggregator (host 0) is excluded so elephants never contend with the
/// query fan-in on its edge downlink.
inline FlowGenConfig bench_flow_gen() {
  FlowGenConfig config;
  config.exclude_host = 0;
  return config;
}

inline void print_header(const std::string& figure,
                         const std::string& paper_result) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf("paper: %s\n\n", paper_result.c_str());
}

}  // namespace eprons::bench
