// Fig. 10: network latency of search queries vs. degree of aggregation.
//
// (a) At 20% background traffic, average and 99th-percentile query network
//     latency grow as traffic consolidates onto fewer switches — the paper
//     reports the 99th rising from 5.64 ms (aggregation 0) to 25.74 ms
//     (aggregation 3).
// (b) The 95th-percentile tail follows the same trend across background
//     loads of 5-50%.
#include "bench_common.h"
#include "sim/search_cluster.h"
#include "topo/aggregation.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const double duration_s = cli.get_double("duration", 8.0);
  bench::print_header(
      "Fig. 10 — network latency vs aggregation",
      "(a) @20% background: 99th grows ~5.64 ms -> ~25.74 ms from "
      "aggregation 0 to 3; (b) 95th rises with aggregation for 5-50% "
      "background");

  const Scenario scn = bench::make_scenario(cli);
  const AggregationPolicies policies(scn.fat_tree());

  auto run_point = [&](int level, double bg) {
    Rng rng(100 + static_cast<std::uint64_t>(bg * 1000));
    const FlowSet background =
        make_background_flows(scn.flow_gen(), 6, bg, 0.1, rng);
    ScenarioConfig scenario;
    scenario.cluster.policy = "max";  // isolate the network effect
    scenario.cluster.target_utilization = 0.3;
    scenario.cluster.duration = sec(duration_s);
    scenario.cluster.warmup = sec(1.0);
    const auto subnet = policies.policy(level).switch_on;
    return scn.run(background, scenario, &subnet);
  };

  std::printf("(a) 20%% background traffic\n");
  Table a({"aggregation", "avg_ms", "p95_ms", "p99_ms"});
  a.set_precision(2);
  for (int level = 0; level <= 3; ++level) {
    const auto result = run_point(level, 0.20);
    a.add_row({static_cast<long long>(level),
               to_ms(result.metrics.network_latency.mean),
               to_ms(result.metrics.network_latency.p95),
               to_ms(result.metrics.network_latency.p99)});
  }
  a.print(std::cout, fmt);

  std::printf("\n(b) 95th-percentile tail network latency (ms)\n");
  Table b({"aggregation", "bg_5%", "bg_10%", "bg_20%", "bg_30%", "bg_50%"});
  b.set_precision(2);
  for (int level = 0; level <= 3; ++level) {
    std::vector<Cell> row{static_cast<long long>(level)};
    for (double bg : {0.05, 0.10, 0.20, 0.30, 0.50}) {
      const auto result = run_point(level, bg);
      row.push_back(to_ms(result.metrics.network_latency.p95));
    }
    b.add_row(std::move(row));
  }
  b.print(std::cout, fmt);
  return 0;
}
