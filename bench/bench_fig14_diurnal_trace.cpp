// Fig. 14: the 24-hour diurnal workload trace (search load + background).
//
// The paper replays a Wikipedia trace whose search load and background
// traffic follow a day/night pattern; we print our synthetic equivalent
// (hourly summary by default, per-minute with --minutes).
#include "bench_common.h"
#include "trace/diurnal.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const int stride = cli.has_flag("minutes") ? 1 : 60;
  bench::print_header(
      "Fig. 14 — diurnal trace (search load, background traffic)",
      "search load swings ~20-100% of peak and background ~10-55% of link "
      "bandwidth over 24 h, peaking mid-day");

  const DiurnalTraceConfig config;
  const auto trace = make_diurnal_trace(config);

  Table table({"minute", "search_load_%", "background_traffic_%"});
  table.set_precision(1);
  double lo_s = 1.0, hi_s = 0.0, lo_b = 1.0, hi_b = 0.0;
  for (const TracePoint& p : trace) {
    if (p.minute % stride == 0) {
      table.add_row({static_cast<long long>(p.minute),
                     100.0 * p.search_load, 100.0 * p.background_util});
    }
    lo_s = std::min(lo_s, p.search_load);
    hi_s = std::max(hi_s, p.search_load);
    lo_b = std::min(lo_b, p.background_util);
    hi_b = std::max(hi_b, p.background_util);
  }
  table.print(std::cout, fmt);
  std::printf("\nsearch load range %.0f-%.0f%% of peak; background "
              "%.0f-%.0f%% of bandwidth\n",
              100.0 * lo_s, 100.0 * hi_s, 100.0 * lo_b, 100.0 * hi_b);
  return 0;
}
