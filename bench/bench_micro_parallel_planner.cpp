// Microbenchmark: serial vs parallel joint-optimizer K search.
//
// The K search is the planner's hot path — every diurnal epoch pays one
// full optimize() (per-K consolidation + Monte-Carlo slack estimation +
// server power prediction). This bench times optimize() at 1/2/4 worker
// threads on the standard 4-ary fat-tree scenario, verifies the chosen
// plan is bit-identical across thread counts (the determinism contract:
// results are a function of seed and shard count, never of worker count),
// and reports the speedup.
//
//   ./bench_micro_parallel_planner [--reps=5] [--samples=400] [--csv|--json]
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "bench_common.h"
#include "core/joint_optimizer.h"

using namespace eprons;

namespace {

double time_optimize(const JointOptimizer& optimizer,
                     const FlowSet& background, double utilization, int reps,
                     JointPlan* out) {
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    JointPlan plan = optimizer.optimize(background, utilization);
    const auto stop = std::chrono::steady_clock::now();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    best_ms = std::min(best_ms, elapsed_ms);
    *out = std::move(plan);
  }
  return best_ms;
}

bool plans_identical(const JointPlan& a, const JointPlan& b) {
  return a.feasible == b.feasible && a.k == b.k &&
         a.placement.switch_on == b.placement.switch_on &&
         a.placement.flow_paths == b.placement.flow_paths &&
         a.slack.request_p95 == b.slack.request_p95 &&
         a.slack.total_p95 == b.slack.total_p95 &&
         a.effective_server_budget == b.effective_server_budget &&
         a.network_power == b.network_power &&
         a.total_power == b.total_power;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const int reps = static_cast<int>(cli.get_int("reps", 5));
  bench::print_header(
      "Micro — parallel joint-optimizer K search",
      "n/a (implementation microbenchmark: identical plans at any thread "
      "count, speedup from evaluating the K candidates concurrently)");

  const Scenario scn = bench::make_scenario(cli);
  Rng bg_rng(42);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 6, 0.2, 0.1, bg_rng);
  const double utilization = 0.3;

  JointOptimizerConfig config;
  config.slack.samples_per_pair =
      static_cast<int>(cli.get_int("samples", 400));

  Table table({"threads", "best_ms", "speedup", "K", "total_W",
               "plan_identical"});
  table.set_precision(2);

  JointPlan serial_plan;
  double serial_ms = 0.0;
  bool all_identical = true;
  for (int threads : {1, 2, 4}) {
    JointOptimizerConfig cfg = config;
    cfg.runtime.threads = threads;
    const JointOptimizer optimizer = scn.optimizer(cfg);
    JointPlan plan;
    const double best_ms =
        time_optimize(optimizer, background, utilization, reps, &plan);
    if (threads == 1) {
      serial_plan = plan;
      serial_ms = best_ms;
    }
    const bool identical = plans_identical(plan, serial_plan);
    all_identical = all_identical && identical;
    table.add_row({static_cast<long long>(threads), best_ms,
                   serial_ms / best_ms, plan.k, plan.total_power,
                   std::string(identical ? "yes" : "NO")});
  }
  table.print(std::cout, fmt);

  if (!all_identical) {
    std::printf("\nFAIL: parallel plan differs from the serial plan\n");
    return EXIT_FAILURE;
  }
  std::printf("\nall thread counts produced bit-identical plans\n");
  return EXIT_SUCCESS;
}
