// Microbenchmark: the cold joint-optimizer K sweep — reference vs fast
// paths, serial vs parallel.
//
// The cold sweep is the planner's hot path — every diurnal epoch without a
// usable previous plan pays one full optimize() (per-K consolidation +
// Monte-Carlo slack estimation + server power prediction). This bench
// times optimize() through two implementations of that pipeline:
//
//   * `reference` — the retained straight-line paths: per-sample
//     Monte-Carlo walks, per-decision equivalent-work convolutions, per-call
//     path enumeration (PlanRequest use_reference_* all set);
//   * `fast` — the production paths: chunked antithetic sampling with
//     vectorized block logs, per-frequency CCDF tables, the memoized
//     PathCatalog, and placement-deduplicated batch slack estimation.
//
// The fast rows run at 1/2/4 worker threads. Every row must produce a
// byte-identical plan (the determinism contract: results are a function of
// seed and shard count — never of worker count or of which implementation
// ran), which the bench checks field-for-field and summarizes as one
// 64-bit plan fingerprint per row. CI diffs the fingerprints fast vs
// reference and tracks the serial speedup in BENCH_6.json.
//
//   ./bench_micro_parallel_planner [--reps=5] [--samples=400] [--csv|--json]
//       [--no-timing] [--threads=N] [--reference-slack] [--reference-dvfs]
//       [--reference-enumeration] [--reference]
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "bench_common.h"
#include "core/joint_optimizer.h"

using namespace eprons;

namespace {

double time_optimize(const JointOptimizer& optimizer,
                     const PlanRequest& request, int reps, JointPlan* out) {
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    JointPlan plan = optimizer.optimize(request);
    const auto stop = std::chrono::steady_clock::now();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    best_ms = std::min(best_ms, elapsed_ms);
    *out = std::move(plan);
  }
  return best_ms;
}

bool plans_identical(const JointPlan& a, const JointPlan& b) {
  return a.feasible == b.feasible && a.k == b.k &&
         a.placement.switch_on == b.placement.switch_on &&
         a.placement.flow_paths == b.placement.flow_paths &&
         a.slack.request_p95 == b.slack.request_p95 &&
         a.slack.total_p95 == b.slack.total_p95 &&
         a.effective_server_budget == b.effective_server_budget &&
         a.network_power == b.network_power &&
         a.total_power == b.total_power;
}

// FNV-1a over the plan's decision-relevant state: one line of output CI can
// diff across implementations, thread counts, and commits.
std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t fnv1a(std::uint64_t hash, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return fnv1a(hash, bits);
}

std::uint64_t plan_fingerprint(const JointPlan& plan) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = fnv1a(hash, static_cast<std::uint64_t>(plan.feasible));
  hash = fnv1a(hash, plan.k);
  hash = fnv1a(hash, plan.slack.request_mean);
  hash = fnv1a(hash, plan.slack.request_p95);
  hash = fnv1a(hash, plan.slack.total_mean);
  hash = fnv1a(hash, plan.slack.total_p95);
  hash = fnv1a(hash, plan.slack.total_p99);
  hash = fnv1a(hash, plan.server.frequency);
  hash = fnv1a(hash, plan.server.busy_fraction);
  hash = fnv1a(hash, plan.server.server_power);
  hash = fnv1a(hash, plan.effective_server_budget);
  hash = fnv1a(hash, plan.network_power);
  hash = fnv1a(hash, plan.total_power);
  for (std::size_t i = 0; i < plan.placement.switch_on.size(); ++i) {
    if (plan.placement.switch_on[i]) hash = fnv1a(hash, i);
  }
  for (const Path& path : plan.placement.flow_paths) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(path.size()));
    for (NodeId node : path) {
      hash = fnv1a(hash, static_cast<std::uint64_t>(node));
    }
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const int reps = static_cast<int>(cli.get_int("reps", 5));
  const bool no_timing = cli.has_flag("no-timing");
  const ReferenceFlags forced = reference_flags_from_cli(cli);
  bench::print_header(
      "Micro — cold K sweep, reference vs fast, serial vs parallel",
      "n/a (implementation microbenchmark: byte-identical plans from every "
      "implementation at any thread count; speedup from the batched fast "
      "paths and from evaluating the K candidates concurrently)");

  const Scenario scn = bench::make_scenario(cli);
  Rng bg_rng(42);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 6, 0.2, 0.1, bg_rng);
  const double utilization = 0.3;

  JointOptimizerConfig config;
  config.slack.samples_per_pair =
      static_cast<int>(cli.get_int("samples", 400));

  Table table({"mode", "threads", "best_ms", "speedup", "K", "total_W",
               "fingerprint", "plan_identical"});
  table.set_precision(2);

  JointPlan reference_plan;
  double reference_ms = 0.0;
  double fast_serial_ms = 0.0;
  bool all_identical = true;
  std::uint64_t reference_fp = 0;
  std::uint64_t fast_fp = 0;

  struct RowSpec {
    const char* mode;
    int threads;
    bool reference;
  };
  const RowSpec rows[] = {
      {"reference", 1, true},
      {"fast", 1, false},
      {"fast", 2, false},
      {"fast", 4, false},
  };
  for (const RowSpec& spec : rows) {
    JointOptimizerConfig cfg = config;
    cfg.runtime.threads = spec.threads;
    const JointOptimizer optimizer = scn.optimizer(cfg);

    PlanRequest request;
    request.background = &background;
    request.utilization = utilization;
    if (spec.reference) {
      request.use_reference_slack = true;
      request.use_reference_dvfs = true;
      request.use_reference_enumeration = true;
    } else {
      // The fast rows still honor an explicit --reference-* flag, so one
      // suspect subsystem can be pinned to its reference implementation
      // while the rest stays fast (determinism bisection).
      bench::apply_reference_flags(forced, &request);
    }

    JointPlan plan;
    const double best_ms = time_optimize(optimizer, request, reps, &plan);
    const std::uint64_t fp = plan_fingerprint(plan);
    if (spec.reference) {
      reference_plan = plan;
      reference_ms = best_ms;
      reference_fp = fp;
    } else if (spec.threads == 1) {
      fast_serial_ms = best_ms;
      fast_fp = fp;
    }
    const bool identical = plans_identical(plan, reference_plan);
    all_identical = all_identical && identical && fp == reference_fp;
    table.add_row({std::string(spec.mode),
                   static_cast<long long>(spec.threads),
                   no_timing ? 0.0 : best_ms,
                   no_timing ? 0.0 : reference_ms / best_ms, plan.k,
                   plan.total_power, strformat("%016llx",
                       static_cast<unsigned long long>(fp)),
                   std::string(identical ? "yes" : "NO")});
  }
  table.print(std::cout, fmt);

  std::printf("\nfingerprint fast=%016llx reference=%016llx identical=%s\n",
              static_cast<unsigned long long>(fast_fp),
              static_cast<unsigned long long>(reference_fp),
              all_identical ? "yes" : "NO");
  if (!all_identical) {
    std::printf("FAIL: plans differ across implementations/threads\n");
    return EXIT_FAILURE;
  }
  if (!no_timing) {
    std::printf("serial cold sweep: reference %.2f ms, fast %.2f ms "
                "(%.1fx)\n",
                reference_ms, fast_serial_ms,
                fast_serial_ms > 0.0 ? reference_ms / fast_serial_ms : 0.0);
  }
  std::printf("all implementations and thread counts produced "
              "byte-identical plans\n");
  return EXIT_SUCCESS;
}
