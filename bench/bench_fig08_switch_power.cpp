// Fig. 8: switch power vs. link utilization (HPE E3800 J9574A).
//
// The paper's measurement: 97.5 W idle; going from 0 to 100% utilization
// adds only 0.59 W (0.6%), independent of 2 vs 4 active ports — hence
// consolidation's assumption that switch power is traffic-independent and
// only ON/OFF matters.
#include "bench_common.h"
#include "power/switch_power.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Fig. 8 — switch power vs link utilization",
      "idle 97.5 W; +0.59 W from 0 to 100% utilization (0.6%), "
      "~identical for 2 and 4 active ports");

  const SwitchPowerModel hpe = SwitchPowerModel::hpe_e3800();
  Table table({"utilization_%", "power_2ports_W", "power_4ports_W"});
  table.set_precision(3);
  for (int pct = 0; pct <= 100; pct += 10) {
    const double util = pct / 100.0;
    table.add_row({static_cast<long long>(pct),
                   hpe.switch_power(true, util, 2),
                   hpe.switch_power(true, util, 4)});
  }
  table.print(std::cout, fmt);

  const double delta =
      hpe.switch_power(true, 1.0, 4) - hpe.switch_power(true, 0.0, 4);
  std::printf("\nutilization-dependent delta: %.2f W (%.2f%% of idle) — "
              "treated as constant by the consolidation objective\n", delta,
              100.0 * delta / hpe.switch_power(true, 0.0, 4));
  std::printf("system-level experiments use the [23] 4-port model: %.0f W "
              "active, 0 W off\n",
              SwitchPowerModel::reference_4port().switch_power(true, 0.5, 4));
  return 0;
}
