// Fig. 2: how the scale factor K affects routing and active switches.
//
// The paper's example: a 4-ary fat-tree with 1 Gbps links and a 50 Mbps
// safety margin carries one 900 Mbps latency-tolerant elephant (red) and
// two 20 Mbps latency-sensitive flows (green, blue).
//   K=1: all three flows share one path (fewest switches, highest latency).
//   K=2: one sensitive flow moves to a new path (more switches).
//   K=3: both sensitive flows move (most switches, lowest latency).
// Solved here with the exact MILP (the paper's eqs. (2)-(9)).
#include "bench_common.h"
#include "consolidate/milp_consolidator.h"
#include "net/link_utilization.h"

using namespace eprons;

namespace {

std::string path_string(const Graph& graph, const Path& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += "-";
    out += graph.node(path[i]).name;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Fig. 2 — scale factor K example (exact MILP)",
      "K=1 all flows share the elephant's path; K=2 one sensitive flow "
      "moves; K=3 both move; active switches grow with K");

  const FatTree topo(4);
  FlowSet flows;
  flows.add(0, 12, 900.0, FlowClass::LatencyTolerant);   // red elephant
  flows.add(1, 13, 20.0, FlowClass::LatencySensitive);   // green
  flows.add(2, 14, 20.0, FlowClass::LatencySensitive);   // blue
  const char* names[] = {"red(900M,tolerant)", "green(20M,sensitive)",
                         "blue(20M,sensitive)"};

  const MilpConsolidator milp(&topo);
  Table table({"K", "active_switches", "shared_with_elephant",
               "max_scaled_util"});
  table.set_precision(3);

  for (int k = 1; k <= 3; ++k) {
    ConsolidationConfig config;
    config.scale_factor_k = k;
    config.safety_margin = 50.0;
    const ConsolidationResult result = milp.consolidate(topo, flows, config);
    if (!result.feasible) {
      std::printf("K=%d infeasible\n", k);
      continue;
    }
    std::printf("K=%d:\n", k);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      std::printf("  %-22s %s\n", names[i],
                  path_string(topo.graph(), result.flow_paths[i]).c_str());
    }
    // How many sensitive flows still share the elephant's agg/core spine?
    int shared = 0;
    const auto elephant_links = topo.graph().path_links(result.flow_paths[0]);
    for (std::size_t i = 1; i < flows.size(); ++i) {
      const auto links = topo.graph().path_links(result.flow_paths[i]);
      for (LinkId l : links) {
        bool on_elephant = false;
        for (LinkId e : elephant_links) {
          if (e == l) on_elephant = true;
        }
        if (on_elephant) {
          ++shared;
          break;
        }
      }
    }
    LinkUtilization scaled(&topo.graph());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      scaled.add_path_load(result.flow_paths[i],
                           flows[i].scaled_demand(k));
    }
    table.add_row({static_cast<long long>(k),
                   static_cast<long long>(result.active_switches),
                   static_cast<long long>(shared),
                   scaled.max_utilization()});
  }
  std::printf("\n");
  table.print(std::cout, fmt);
  return 0;
}
