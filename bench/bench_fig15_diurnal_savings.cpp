// Fig. 15: total system power over the diurnal trace, and average savings.
//
// Paper results: EPRONS saves ~25% of total system power on average vs
// ~8% for TimeTrader (>2x), peaks at 31.25% in one-minute intervals at
// night vs 12.5% for TimeTrader; TimeTrader saves no DCN power; EPRONS's
// server-side saving alone beats TimeTrader's by ~2%.
//
// Each scheme is calibrated with full DES runs at grid points along the
// diurnal curve, then interpolated across the 1440-minute trace (the
// paper's own train-then-apply methodology, section IV-A).
#include "bench_common.h"
#include "core/trace_replay.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Fig. 15 — diurnal total system power and average savings",
      "EPRONS avg total saving ~25% (TimeTrader ~8%); peak 31.25% vs "
      "12.5%; TimeTrader network saving 0");

  const Scenario scn = bench::make_scenario(cli);
  TraceReplayConfig config;
  config.scenario.cluster.warmup = sec(1.0);
  config.scenario.cluster.duration =
      sec(cli.get_double("duration", 6.0));
  config.peak_utilization = cli.get_double("peak-util", 0.5);
  config.joint.slack.samples_per_pair = 200;

  const TraceReplay replay = scn.trace_replay(config);
  const ReplayResult base = replay.replay(Scheme::NoPowerManagement);
  const ReplayResult timetrader = replay.replay(Scheme::TimeTrader);
  const ReplayResult eprons = replay.replay(Scheme::Eprons);

  std::printf("(a) total system power over the day (hourly samples, W)\n");
  Table series({"minute", "no_power_mgmt", "timetrader_total",
                "eprons_total", "eprons_network"});
  series.set_precision(0);
  for (std::size_t i = 0; i < base.series.size(); i += 60) {
    series.add_row({static_cast<long long>(base.series[i].minute),
                    base.series[i].total_power,
                    timetrader.series[i].total_power,
                    eprons.series[i].total_power,
                    eprons.series[i].network_power});
  }
  series.print(std::cout, fmt);

  std::printf("\n(b) average power saving vs no power management (%%)\n");
  const auto tt = TraceReplay::savings(base, timetrader);
  const auto ep = TraceReplay::savings(base, eprons);
  Table savings({"scheme", "servers_%", "network_%", "total_%",
                 "peak_minute_%"});
  savings.set_precision(2);
  savings.add_row({std::string("timetrader"), tt.server_pct, tt.network_pct,
                   tt.total_pct, tt.peak_total_pct});
  savings.add_row({std::string("eprons"), ep.server_pct, ep.network_pct,
                   ep.total_pct, ep.peak_total_pct});
  savings.print(std::cout, fmt);

  std::printf("\nEPRONS calibration points (per diurnal shape):\n");
  Table calib({"shape", "utilization", "bg_util", "K", "switches",
               "cpu_W/server", "miss_%"});
  calib.set_precision(2);
  for (const CalibrationPoint& p : eprons.calibration) {
    calib.add_row({p.shape, p.utilization, p.background_util, p.chosen_k,
                   static_cast<long long>(p.active_switches),
                   p.cpu_power_per_server, 100.0 * p.subquery_miss_rate});
  }
  calib.print(std::cout, fmt);
  return 0;
}
