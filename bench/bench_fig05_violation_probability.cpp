// Fig. 4 + Fig. 5: violation probability curves and the average-VP choice.
//
// Fig. 5 plots the VP of equivalent requests R1e/R2e/R3e against the work
// achievable by the deadline (omega(D), eq. (1)). Fig. 4 shows the key
// EPRONS-Server idea: the frequency satisfying the *average* VP (f_new)
// sits below the frequency satisfying every request individually (f2),
// while the average miss budget still holds.
#include "bench_common.h"
#include "dvfs/equivalent_queue.h"
#include "dvfs/policies.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Fig. 4/5 — violation probability vs frequency; average-VP selection",
      "avg-VP frequency f_new < max-VP frequency f2; R1's VP at f2 (~1.8%) "
      "wastes energy against the 5% budget");

  const Scenario scn = bench::make_scenario(cli);
  const ServiceModel& model = scn.service_model();

  // Two queued requests, R2 tighter than R1 relative to its queue position
  // (mirrors the Fig. 4 setup: deadlines D1 < D2 but R2e = R1 + R2).
  std::vector<QueuedRequest> queue;
  QueuedRequest r1;
  r1.id = 1;
  r1.deadline_server = r1.deadline_with_slack = ms(18.0);
  QueuedRequest r2;
  r2.id = 2;
  r2.deadline_server = r2.deadline_with_slack = ms(30.0);
  queue.push_back(r1);
  queue.push_back(r2);
  const std::span<const QueuedRequest> view(queue.data(), queue.size());

  const EquivalentQueue equivalents(&model, queue.size(), 0.0);
  Table table({"freq_GHz", "VP_R1e_%", "VP_R2e_%", "avg_VP_%"});
  table.set_precision(2);
  for (Freq f : model.frequency_grid()) {
    const double vp1 = model.violation_probability(equivalents.at(0), 0.0,
                                                   r1.deadline_with_slack, f);
    const double vp2 = model.violation_probability(equivalents.at(1), 0.0,
                                                   r2.deadline_with_slack, f);
    table.add_row({f, 100.0 * vp1, 100.0 * vp2, 100.0 * (vp1 + vp2) / 2.0});
  }
  table.print(std::cout, fmt);

  RubikPlusPolicy rubik_plus(&model);
  EpronsServerPolicy eprons(&model);
  const Freq f2 = rubik_plus.select_frequency(0.0, view, 0.0);
  const Freq fnew = eprons.select_frequency(0.0, view, 0.0);
  std::printf("\nmax-VP frequency f2    = %.1f GHz (Rubik+ rule)\n", f2);
  std::printf("avg-VP frequency f_new = %.1f GHz (EPRONS-Server rule)\n",
              fnew);
  std::printf("average VP at f_new    = %.2f%% (budget 5%%)\n",
              100.0 * eprons.average_vp(0.0, view, 0.0, fnew));

  // Fig. 5 view: VP of R1e..R3e as a function of work-done-by-deadline.
  std::printf("\nFig. 5 — VP vs work done at deadline (Mcycles):\n");
  Table fig5({"work_Mcycles", "VP_R1e_%", "VP_R2e_%", "VP_R3e_%"});
  fig5.set_precision(2);
  const double max_work = model.fresh_convolution(3).max_value();
  for (double w = 0.0; w <= max_work; w += max_work / 12.0) {
    fig5.add_row({w / 1e6, 100.0 * model.fresh_convolution(1).ccdf(w),
                  100.0 * model.fresh_convolution(2).ccdf(w),
                  100.0 * model.fresh_convolution(3).ccdf(w)});
  }
  fig5.print(std::cout, fmt);
  return 0;
}
