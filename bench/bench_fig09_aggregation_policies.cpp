// Fig. 9: the four network aggregation policies on the 4-ary fat-tree.
//
// "From Aggregation 0 to Aggregation 3, we gradually turn off the
// core-level switches and the corresponding aggregation-level switches."
// This bench prints which switches each policy keeps on, the active count,
// and verifies full host-to-host connectivity at every level.
#include "bench_common.h"
#include "topo/aggregation.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Fig. 9 — aggregation policies 0-3",
      "progressively fewer active switches (20 -> 13 for k=4), hosts stay "
      "connected; greyed switches are powered off");

  const FatTree topo(4);
  const AggregationPolicies policies(&topo);
  const Graph& graph = topo.graph();
  const auto hosts = graph.hosts();

  Table table({"aggregation", "active_switches", "network_W@36",
               "connected", "off_switches"});
  for (int level = 0; level <= policies.max_level(); ++level) {
    const AggregationPolicy policy = policies.policy(level);
    std::string off;
    for (const Node& n : graph.nodes()) {
      if (is_switch_type(n.type) &&
          !policy.switch_on[static_cast<std::size_t>(n.id)]) {
        if (!off.empty()) off += " ";
        off += n.name;
      }
    }
    const bool connected = graph.connected(hosts[0], hosts, policy.switch_on);
    table.add_row({static_cast<long long>(level),
                   static_cast<long long>(policy.active_switches),
                   36.0 * policy.active_switches,
                   std::string(connected ? "yes" : "NO"),
                   off.empty() ? std::string("(none)") : off});
  }
  table.print(std::cout, fmt);
  return 0;
}
