// Open-loop serving sweep: arrival rate x admission policy x scale factor K.
//
// Each cell runs the ServingHarness (serve/serving_harness.h) over a short
// diurnal horizon with burst noise and flash crowds: arrivals are never
// gated on completions, the EpochController re-plans on every epoch
// boundary, and the selected admission policy decides what the cluster
// actually accepts. Rows report admit/shed/drop shares, tail latency of
// completed queries, and energy per admitted query — the serving-mode
// counterpart of the closed-loop figure benches.
//
// Output is byte-identical for any --threads (the DES is serial; threads
// only parallelize the planner, which is bit-identical by contract). The
// trailing `serving-fingerprint:` / `serving_throughput_qps:` lines are
// gated in CI by tools/check_trajectory.py against
// bench/trajectories/BENCH_9.json.
//
//   ./bench_serving_openloop [--peak-qps=40] [--horizon=900] [--window=60]
//       [--epoch-len=300] [--admission=...] [--threads=N] [--epoch-log=F]
#include <cinttypes>

#include "bench_common.h"
#include "obs/jsonl.h"
#include "serve/serving_harness.h"

using namespace eprons;

namespace {

/// FNV-1a over the serialized window records — the run's identity for the
/// cross-thread determinism diff and the trajectory gate.
std::uint64_t fingerprint_windows(
    const std::vector<obs::ServingWindowRecord>& windows) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& window : windows) {
    for (const char c : obs::to_jsonl(window)) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const ServingFlags serve = serving_flags_from_cli(cli);
  bench::print_header(
      "Open-loop serving — arrival rate x admission policy x K",
      "serving-mode extension (no paper figure): admission control trades "
      "shed queries for tail latency and energy per admitted query while "
      "the planner re-consolidates each epoch");

  const Scenario scn = bench::make_scenario(cli);

  // The top multiplier pushes flash-crowd peaks past the in-flight cap so
  // the admission column actually differentiates; the lower ones stay in
  // the closed-loop-comparable regime.
  std::vector<double> rates = {0.5, 2.0, 8.0};  // x peak_qps
  std::vector<std::string> policies = {"always", "token-bucket", "sla-aware"};
  std::vector<double> ks = {2.0};
  if (cli.has_flag("full-k")) ks = {1.0, 2.0, 3.0};
  const std::string only_policy = cli.get_string("admission", "");
  if (!only_policy.empty()) policies = {only_policy};

  Table table({"rate_x", "policy", "K", "arrivals", "admit%", "shed%",
               "drop%", "p50_ms", "p99_ms", "miss%", "J/query"});
  table.set_precision(2);

  std::uint64_t fp = 1469598103934665603ULL;
  double peak_throughput_qps = 0.0;
  long long total_arrivals = 0;

  for (const double rate_x : rates) {
    for (const std::string& policy : policies) {
      for (const double k : ks) {
        ServingHarnessConfig config;
        config.arrivals.horizon = sec(serve.horizon_s);
        config.arrivals.peak_rate_qps = serve.peak_qps * rate_x;
        config.arrivals.seed = static_cast<std::uint64_t>(serve.seed);
        config.arrivals.flash.events_per_hour = serve.flash_per_hour;
        config.arrivals.burst.enabled = !serve.no_burst;
        // Start mid-morning so a short horizon still sees rising load.
        config.arrivals.diurnal_start = 9.0 * 3600.0 * 1.0e6;
        config.epoch.transition.epoch_length = sec(serve.epoch_s);
        config.epoch.joint.k_min = k;
        config.epoch.joint.k_max = k;  // pin K for the ablation axis
        config.epoch.joint.slack.samples_per_pair = 150;
        config.epoch.runtime = runtime_from_cli(cli);
        config.flow_gen = scn.flow_gen();
        config.report_window = sec(serve.window_s);
        config.admission = policy;
        config.shed = serve.shed;
        // Tight fan-out concurrency so overload is a reachable state at
        // the top of the rate axis (sustainable rate is ~1450 qps on the
        // default substrate; the cap binds during flash crowds).
        config.max_inflight = 16;
        config.queue_limit = 32;
        // Explicit bucket rate below the top row's offered mean (the auto
        // rate — the sustainable ~1450 qps — would never bind here).
        config.policy.bucket_rate_qps = 250.0;
        config.seed = static_cast<std::uint64_t>(serve.seed);

        ServingHarness harness(&scn.topology(), &scn.service_model(),
                               &scn.power_model(), config);
        const ServingReport report = harness.run();

        const double n = std::max(1.0, static_cast<double>(report.arrivals));
        const double span_s = serve.horizon_s;
        const double throughput = static_cast<double>(report.completed) /
                                  std::max(1.0, span_s);
        peak_throughput_qps = std::max(peak_throughput_qps, throughput);
        total_arrivals += report.arrivals;

        table.add_row(
            {rate_x, policy, k, static_cast<long long>(report.arrivals),
             100.0 * static_cast<double>(report.admitted) / n,
             100.0 * static_cast<double>(report.shed) / n,
             100.0 * static_cast<double>(report.dropped + report.late_shed) /
                 n,
             to_ms(report.latency.p50), to_ms(report.latency.p99),
             report.subqueries_completed > 0
                 ? 100.0 * static_cast<double>(report.sla_misses) /
                       static_cast<double>(report.subqueries_completed)
                 : 0.0,
             report.energy_per_admitted_j});

        fp ^= fingerprint_windows(report.windows);
        fp *= 1099511628211ULL;
      }
    }
  }
  table.print(std::cout, fmt);

  // Machine-checked trailer (tools/check_trajectory.py --serving).
  std::printf("\nserving-fingerprint: %016" PRIx64 "\n", fp);
  std::printf("serving_throughput_qps: %.3f\n", peak_throughput_qps);
  std::printf("serving_total_arrivals: %lld\n", total_arrivals);
  return 0;
}
