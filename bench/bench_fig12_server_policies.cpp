// Fig. 12: server power management comparison (no network power mgmt,
// full topology, 20% background traffic — the paper's section V-B2 setup).
//
// (a) CPU power vs server utilization (10-50%) at a 30 ms constraint
//     (25 ms server + 5 ms network): Rubik worst of the managed policies,
//     TimeTrader in between, Rubik+ and EPRONS-Server best, EPRONS-Server
//     lowest across the range.
// (b) CPU power vs request tail-latency constraint at 30% utilization:
//     nothing meets < ~18 ms; EPRONS-Server wins at 19 ms and above.
// (c) EPRONS-Server power vs constraint for utilizations 10-50%.
#include "bench_common.h"
#include "sim/search_cluster.h"
#include "topo/aggregation.h"

using namespace eprons;

namespace {

struct PolicyRun {
  double cpu_power = 0.0;
  double p95_ms = 0.0;
  double miss = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const double duration_s = cli.get_double("duration", 8.0);
  bench::print_header(
      "Fig. 12 — server power management (Rubik/Rubik+/TimeTrader/EPRONS)",
      "(a) EPRONS-Server lowest power across 10-50% utilization; Rubik "
      "highest managed; (b) constraints < ~18 ms unreachable, EPRONS best "
      "from 19 ms; (c) power falls steeply as the constraint loosens");

  const Scenario scn = bench::make_scenario(cli);
  const AggregationPolicies policies(scn.fat_tree());
  const auto full = policies.policy(0).switch_on;  // no net power mgmt
  Rng bg_rng(300);
  const FlowSet background =
      make_background_flows(scn.flow_gen(), 6, 0.20, 0.1, bg_rng);

  auto run = [&](const std::string& policy, double util,
                 double constraint_ms, double server_budget_ms) {
    ScenarioConfig scenario;
    scenario.cluster.policy = policy;
    scenario.cluster.target_utilization = util;
    scenario.cluster.latency_constraint = ms(constraint_ms);
    scenario.cluster.server_budget = ms(server_budget_ms);
    scenario.cluster.duration = sec(duration_s);
    scenario.cluster.warmup = sec(1.0);
    const auto result = scn.run(background, scenario, &full);
    return PolicyRun{result.metrics.avg_cpu_power_per_server,
                     to_ms(result.metrics.subquery_latency.p95),
                     result.metrics.subquery_miss_rate};
  };

  const std::vector<std::string> all_policies = {"max", "timetrader", "rubik",
                                                 "rubik+", "eprons"};

  std::printf("(a) CPU power (W/server) vs utilization @ 30 ms constraint\n");
  Table a({"policy", "util_10%", "util_20%", "util_30%", "util_40%",
           "util_50%"});
  a.set_precision(2);
  for (const auto& policy : all_policies) {
    std::vector<Cell> row{policy};
    for (double util : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      row.push_back(run(policy, util, 30.0, 25.0).cpu_power);
    }
    a.add_row(std::move(row));
  }
  a.print(std::cout, fmt);

  std::printf(
      "\n(b) CPU power (W/server) vs constraint @ 30%% utilization\n"
      "    (server budget = constraint - 5 ms network budget)\n");
  const std::vector<double> constraints = {18, 19, 22, 25, 28, 31, 34, 40};
  {
    std::vector<std::string> cols = {"policy"};
    for (double c : constraints) cols.push_back(strformat("%.0fms", c));
    Table b(std::move(cols));
    b.set_precision(2);
    for (const auto& policy : all_policies) {
      std::vector<Cell> row{policy};
      for (double c : constraints) {
        row.push_back(run(policy, 0.3, c, c - 5.0).cpu_power);
      }
      b.add_row(std::move(row));
    }
    b.print(std::cout, fmt);

    // SLA feasibility companion: p95 vs constraint for EPRONS.
    Table miss({"constraint_ms", "eprons_p95_ms", "eprons_miss_%"});
    miss.set_precision(2);
    for (double c : constraints) {
      const PolicyRun r = run("eprons", 0.3, c, c - 5.0);
      miss.add_row({c, r.p95_ms, 100.0 * r.miss});
    }
    std::printf("\n    EPRONS-Server SLA check:\n");
    miss.print(std::cout, fmt);
  }

  std::printf("\n(c) EPRONS-Server CPU power (W/server): utilization x "
              "constraint\n");
  {
    std::vector<std::string> cols = {"utilization"};
    for (double c : constraints) cols.push_back(strformat("%.0fms", c));
    Table ct(std::move(cols));
    ct.set_precision(2);
    for (double util : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      std::vector<Cell> row{strformat("%.0f%%", util * 100.0)};
      for (double c : constraints) {
        row.push_back(run("eprons", util, c, c - 5.0).cpu_power);
      }
      ct.add_row(std::move(row));
    }
    ct.print(std::cout, fmt);
  }
  return 0;
}
