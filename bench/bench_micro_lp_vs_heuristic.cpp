// Section IV-B: exact optimization vs the greedy heuristic.
//
// The paper: "the computation time of the linear programming model can be
// more than 42 min ... with 3000 flows"; the greedy bin-packing heuristic
// is the production path. This bench sweeps flow count and reports solve
// time and objective (active switches) for:
//   * the paper-literal arc LP relaxation (lower bound),
//   * the exact path MILP (small instances only),
//   * the greedy heuristic.
// Defaults keep the sweep quick; pass --max-exact=12 to watch the MILP
// blow past 6 minutes at just 12 flows.
#include <chrono>

#include "bench_common.h"
#include "consolidate/arc_lp.h"
#include "consolidate/greedy_consolidator.h"
#include "consolidate/milp_consolidator.h"

using namespace eprons;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  const int max_exact = static_cast<int>(cli.get_int("max-exact", 8));
  // The dense arc LP grows as (flows x nodes) rows by (flows x arcs)
  // columns; past ~24 flows a solve takes minutes on this substrate --
  // which is the paper's point ("more than 42 min with 3000 flows").
  const int max_lp = static_cast<int>(cli.get_int("max-lp", 24));
  const int max_flows = static_cast<int>(cli.get_int("max-flows", 96));
  bench::print_header(
      "Section IV-B — exact LP/MILP vs greedy heuristic",
      "exact optimization is orders of magnitude slower (42 min @ 3000 "
      "flows on the paper's platform); the heuristic is near-optimal in "
      "active-switch count and runs in microseconds");

  const FatTree topo(4);
  const ArcLpRelaxation relax(&topo);
  const MilpConsolidator milp(&topo);
  const GreedyConsolidator greedy(&topo);

  Table table({"flows", "lp_bound_W", "lp_sec", "milp_switches", "milp_sec",
               "greedy_switches", "greedy_sec", "lp_rows", "lp_vars"});
  table.set_precision(4);

  for (int flows_n : {2, 4, 8, 12, 24, 48, 96}) {
    if (flows_n > max_flows) break;
    Rng rng(500 + static_cast<std::uint64_t>(flows_n));
    FlowSet flows;
    for (int i = 0; i < flows_n; ++i) {
      const int src = static_cast<int>(rng.uniform_int(0, 15));
      int dst = src;
      while (dst == src) dst = static_cast<int>(rng.uniform_int(0, 15));
      flows.add(src, dst, rng.uniform(10.0, 120.0),
                rng.bernoulli(0.3) ? FlowClass::LatencySensitive
                                   : FlowClass::LatencyTolerant);
    }
    ConsolidationConfig config;
    config.scale_factor_k = 2.0;

    std::vector<Cell> row{static_cast<long long>(flows_n)};

    if (flows_n <= max_lp) {
      const auto start = std::chrono::steady_clock::now();
      const ArcLpResult bound = relax.solve(flows, config);
      const double secs = seconds_since(start);
      row.push_back(bound.status == lp::SolveStatus::Optimal
                        ? Cell{bound.network_power_bound}
                        : Cell{std::string("-")});
      row.push_back(secs);
    } else {
      row.push_back(std::string("(too slow)"));
      row.push_back(std::string("-"));
    }
    if (flows_n <= max_exact) {
      const auto start = std::chrono::steady_clock::now();
      const ConsolidationResult exact = milp.consolidate(topo, flows, config);
      const double secs = seconds_since(start);
      row.push_back(exact.feasible
                        ? Cell{static_cast<long long>(exact.active_switches)}
                        : Cell{std::string("-")});
      row.push_back(secs);
    } else {
      row.push_back(std::string("(skipped)"));
      row.push_back(std::string("-"));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      const ConsolidationResult heur = greedy.consolidate(topo, flows, config);
      const double secs = seconds_since(start);
      row.push_back(heur.feasible
                        ? Cell{static_cast<long long>(heur.active_switches)}
                        : Cell{std::string("-")});
      row.push_back(secs);
    }
    {
      const lp::Model model = relax.build_model(flows, config);
      row.push_back(static_cast<long long>(model.num_rows()));
      row.push_back(static_cast<long long>(model.num_variables()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, fmt);
  return 0;
}
