// Fig. 1: link utilization vs. network latency — the latency knee.
//
// The paper measured the average latency of search queries against link
// utilization: "well behaved at low link utilization", then beyond a knee
// "the latency grows quickly from 139 us to 11.981 ms".
//
// We sweep utilization on a 6-hop inter-pod fat-tree path (the query
// request path) and report the mean and tail of the sampled latency.
#include "bench_common.h"
#include "net/link_latency.h"
#include "sim/metrics.h"
#include "stats/percentile.h"
#include "util/rng.h"

using namespace eprons;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const TableFormat fmt = table_format_from_cli(cli);
  bench::print_header(
      "Fig. 1 — utilization vs network latency (knee)",
      "flat ~139 us at low utilization; ~11.98 ms past the knee");

  const LinkLatencyModel model;  // 1 Gbps, Fig. 1 calibration
  const int hops = 6;            // inter-pod request path
  Rng rng(1);

  // The paper loads one link of the path (the measured link); the rest of
  // the path stays lightly utilized.
  const double idle_util = 0.05;
  auto sample_path = [&](double bottleneck_util) {
    double total = model.sample_latency(bottleneck_util, rng);
    for (int h = 1; h < hops; ++h) {
      total += model.sample_latency(idle_util, rng);
    }
    return total;
  };

  Table table({"utilization_%", "mean_ms", "p50_ms", "p95_ms", "p99_ms"});
  table.set_precision(3);
  for (int pct = 0; pct <= 100; pct += 5) {
    const double util = pct / 100.0;
    PercentileEstimator samples;
    for (int i = 0; i < 20000; ++i) samples.add(sample_path(util));
    const LatencyStats stats = summarize(samples);
    table.add_row({static_cast<long long>(pct), to_ms(stats.mean),
                   to_ms(stats.p50), to_ms(stats.p95), to_ms(stats.p99)});
  }
  table.print(std::cout, fmt);

  // Pin the two calibration anchors the paper quotes.
  PercentileEstimator low, high;
  for (int i = 0; i < 20000; ++i) {
    low.add(sample_path(idle_util));
    high.add(sample_path(1.0));
  }
  std::printf("\nmeasured anchors: low-util mean %.0f us (paper 139 us), "
              "saturated mean %.2f ms (paper 11.981 ms)\n",
              low.mean(), to_ms(high.mean()));
  return 0;
}
